// Package cli holds the small pieces shared by the command-line tools:
// parsing a graph-family specification into a generated topology and
// parsing protocol names. Keeping them here (rather than duplicated in
// each main package) makes them unit-testable.
package cli

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/bipartite"
	"repro/internal/churn"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rng"
)

// GraphSpec describes a topology to generate from command-line flags.
type GraphSpec struct {
	// Kind is one of: regular, simple-regular, trust, erdos, almost,
	// proximity, complete.
	Kind string
	// N is the number of clients and servers.
	N int
	// Delta is the client degree; zero selects ⌈log₂²(n)⌉ (capped at n).
	Delta int
	// ExpectedDegree is only used by proximity graphs: the expected number
	// of servers within the connection radius. Zero falls back to Delta.
	ExpectedDegree int
	// Seed drives the generator.
	Seed uint64
}

// Kinds lists the accepted values of GraphSpec.Kind.
func Kinds() []string {
	return []string{"regular", "simple-regular", "trust", "erdos", "almost", "proximity", "complete"}
}

// DefaultDelta returns the Θ(log² n) degree used when no degree is given.
func DefaultDelta(n int) int {
	if n < 2 {
		return 1
	}
	l := math.Log2(float64(n))
	d := int(math.Ceil(l * l))
	if d > n {
		d = n
	}
	if d < 1 {
		d = 1
	}
	return d
}

// Build generates the topology the spec describes.
func (s GraphSpec) Build() (*bipartite.Graph, error) {
	if s.N <= 0 {
		return nil, fmt.Errorf("cli: graph size must be positive, got %d", s.N)
	}
	delta := s.Delta
	if delta <= 0 {
		delta = DefaultDelta(s.N)
	}
	src := rng.New(s.Seed)
	switch strings.ToLower(strings.TrimSpace(s.Kind)) {
	case "regular", "":
		return gen.Regular(s.N, delta, src)
	case "simple-regular":
		return gen.RegularSimple(s.N, delta, src)
	case "trust":
		return gen.TrustSubset(s.N, s.N, delta, src)
	case "erdos":
		return gen.ErdosRenyi(s.N, s.N, float64(delta)/float64(s.N), true, src)
	case "almost":
		return gen.AlmostRegular(gen.DefaultAlmostRegularConfig(s.N), src)
	case "complete":
		return gen.Complete(s.N, s.N)
	case "proximity":
		deg := s.ExpectedDegree
		if deg <= 0 {
			deg = delta
		}
		gg, err := gen.Proximity(gen.ProximityConfig{
			NumClients: s.N,
			NumServers: s.N,
			Radius:     gen.RadiusForExpectedDegree(s.N, deg),
			MinDegree:  2,
		}, src)
		if err != nil {
			return nil, err
		}
		return gg.Graph, nil
	default:
		return nil, fmt.Errorf("cli: unknown graph family %q (want one of %s)", s.Kind, strings.Join(Kinds(), ", "))
	}
}

// ParseProtocol maps a protocol name to the core variant.
func ParseProtocol(name string) (core.Variant, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "saer":
		return core.SAER, nil
	case "raes":
		return core.RAES, nil
	default:
		return core.SAER, fmt.Errorf("cli: unknown protocol %q (want saer or raes)", name)
	}
}

// TopologyMode selects the storage representation of a generated
// topology.
type TopologyMode int

const (
	// TopologyCSR materializes the graph with the classic generators
	// (double-CSR adjacency, O(n·Δ) memory).
	TopologyCSR TopologyMode = iota
	// TopologyImplicit builds the regenerative topology: neighborhoods
	// are recomputed on demand from per-client seeds, O(n) memory. Only
	// the regular, erdos, trust and almost families have implicit
	// samplers.
	TopologyImplicit
	// TopologyImplicitCSR materializes the implicit sampler's edge set
	// into a CSR graph: the memory cost of TopologyCSR with the exact
	// edge multiset of TopologyImplicit, so a run on either is
	// bit-for-bit identical — the knob that demonstrates the equivalence
	// from the command line.
	TopologyImplicitCSR
)

// TopologyModes lists the accepted -topology values.
func TopologyModes() []string { return []string{"csr", "implicit", "implicit-csr"} }

// ParseTopologyMode maps a -topology flag value to its mode.
func ParseTopologyMode(name string) (TopologyMode, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "csr", "":
		return TopologyCSR, nil
	case "implicit":
		return TopologyImplicit, nil
	case "implicit-csr":
		return TopologyImplicitCSR, nil
	default:
		return TopologyCSR, fmt.Errorf("cli: unknown topology mode %q (want one of %s)", name, strings.Join(TopologyModes(), ", "))
	}
}

// buildImplicit generates the regenerative topology for the families that
// have an implicit sampler.
func (s GraphSpec) buildImplicit() (*gen.Implicit, error) {
	if s.N <= 0 {
		return nil, fmt.Errorf("cli: graph size must be positive, got %d", s.N)
	}
	delta := s.Delta
	if delta <= 0 {
		delta = DefaultDelta(s.N)
	}
	switch strings.ToLower(strings.TrimSpace(s.Kind)) {
	case "regular", "":
		return gen.RegularImplicit(s.N, delta, s.Seed)
	case "erdos":
		return gen.ErdosRenyiImplicit(s.N, s.N, float64(delta)/float64(s.N), true, s.Seed)
	case "trust":
		return gen.TrustSubsetImplicit(s.N, s.N, delta, s.Seed)
	case "almost":
		return gen.AlmostRegularImplicit(gen.DefaultAlmostRegularConfig(s.N), s.Seed)
	default:
		return nil, fmt.Errorf("%w: %q (implicit families: regular, erdos, trust, almost)", gen.ErrNoImplicit, s.Kind)
	}
}

// BuildTopology generates the topology the spec describes in the
// requested representation. TopologyCSR uses the classic materialized
// generators; TopologyImplicit and TopologyImplicitCSR share the
// regenerative samplers, differing only in storage.
func (s GraphSpec) BuildTopology(mode TopologyMode) (bipartite.Topology, error) {
	switch mode {
	case TopologyCSR:
		return s.Build()
	case TopologyImplicit:
		return s.buildImplicit()
	case TopologyImplicitCSR:
		t, err := s.buildImplicit()
		if err != nil {
			return nil, err
		}
		return t.Materialize()
	default:
		return nil, fmt.Errorf("cli: unknown topology mode %d", int(mode))
	}
}

// ParseChurnBackend maps a churn-backend name to its selector (see
// churn.Backend; both backends produce bit-for-bit identical runs).
func ParseChurnBackend(name string) (churn.Backend, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "implicit", "":
		return churn.BackendImplicit, nil
	case "csr-patch":
		return churn.BackendCSRPatch, nil
	default:
		return churn.BackendImplicit, fmt.Errorf("cli: unknown churn backend %q (want implicit or csr-patch)", name)
	}
}

// ParseEngineMode maps an engine-mode name to the core engine selector.
// All modes compute the identical random process; the knob only trades
// dense streaming scans against sparse active-frontier walks (see
// core.EngineMode and PERFORMANCE.md).
func ParseEngineMode(name string) (core.EngineMode, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "auto", "":
		return core.EngineAuto, nil
	case "dense":
		return core.EngineDense, nil
	case "sparse":
		return core.EngineSparse, nil
	default:
		return core.EngineAuto, fmt.Errorf("cli: unknown engine mode %q (want auto, dense or sparse)", name)
	}
}

// ParseStealMode maps a -steal flag value to the work-stealing schedule
// selector. Like the engine mode, the knob only moves wall-clock: every
// schedule produces bit-for-bit identical results (see core.StealMode).
func ParseStealMode(name string) (core.StealMode, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "auto", "":
		return core.StealAuto, nil
	case "on":
		return core.StealOn, nil
	case "off":
		return core.StealOff, nil
	default:
		return core.StealAuto, fmt.Errorf("cli: unknown steal mode %q (want auto, on or off)", name)
	}
}

// ParseAutotuneMode maps a -autotune flag value to the knob-selection
// mode (see core.AutotuneMode; explicit -shards/-sparse-divisor values
// always win over the tuner).
func ParseAutotuneMode(name string) (core.AutotuneMode, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "on", "":
		return core.AutotuneOn, nil
	case "off":
		return core.AutotuneOff, nil
	default:
		return core.AutotuneOn, fmt.Errorf("cli: unknown autotune mode %q (want on or off)", name)
	}
}
