package cli

import (
	"flag"

	"repro/internal/core"
)

// RunFlags bundles the protocol and performance flags every run-style
// binary shares (saer-sim, the wire server/client, and any future
// driver): one Register call defines the flags, one Config call parses
// the mode names and produces the validated core.Config. The binaries
// never assemble core.Params/core.Options field by field — knob
// normalization and validation live behind core.Config's constructor,
// in one place.
type RunFlags struct {
	// Protocol is the variant name (saer or raes).
	Protocol string
	// D, C, Seed and MaxRounds are the protocol identity.
	D         int
	C         float64
	Seed      uint64
	MaxRounds int
	// Workers, Shards, SparseDivisor, Engine, Steal and Autotune are the
	// performance knobs; results are bit-for-bit independent of all of
	// them.
	Workers       int
	Shards        int
	SparseDivisor int
	Engine        string
	Steal         string
	Autotune      string
}

// Register defines the shared run flags on fs, writing into f.
func (f *RunFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Protocol, "protocol", "saer", "protocol: saer or raes")
	fs.IntVar(&f.D, "d", 2, "requests per client")
	fs.Float64Var(&f.C, "c", 4, "threshold constant c (server capacity = floor(c*d)); 0 = the paper's prescribed value")
	fs.Uint64Var(&f.Seed, "seed", 1, "random seed (graph seed = seed, protocol seed = seed+1)")
	fs.IntVar(&f.MaxRounds, "max-rounds", 0, "round cap (0 = default)")
	fs.IntVar(&f.Workers, "workers", 0, "worker goroutines per phase (0 = GOMAXPROCS)")
	fs.IntVar(&f.Shards, "shards", 0, "server shards of the dense round pipeline (0 = worker count, 1 = unsharded; identical results, different locality)")
	fs.IntVar(&f.SparseDivisor, "sparse-divisor", 0, "EngineAuto sparse-switch threshold: go sparse when active clients <= n/divisor (0 = default 4; identical results)")
	fs.StringVar(&f.Engine, "engine", "auto", "round-loop engine: auto, dense or sparse (identical results, different wall-clock)")
	fs.StringVar(&f.Steal, "steal", "auto", "work-stealing round schedule: auto (on when workers > 1), on or off (identical results, different wall-clock)")
	fs.StringVar(&f.Autotune, "autotune", "on", "adaptive shard-width and sparse-switch selection from n, delta, m and the measured cache: on or off (explicit -shards/-sparse-divisor always win; identical results)")
}

// Config parses the mode names and returns the validated core.Config.
// The protocol seed is Seed+1, matching the historical saer-sim
// convention (graph seed = Seed). Callers that derive C from the graph
// may pass C = 0 here and fill cfg.C before use; validation then runs in
// core.Config.NewRunner.
func (f *RunFlags) Config() (core.Config, error) {
	var cfg core.Config
	variant, err := ParseProtocol(f.Protocol)
	if err != nil {
		return cfg, err
	}
	engine, err := ParseEngineMode(f.Engine)
	if err != nil {
		return cfg, err
	}
	steal, err := ParseStealMode(f.Steal)
	if err != nil {
		return cfg, err
	}
	tune, err := ParseAutotuneMode(f.Autotune)
	if err != nil {
		return cfg, err
	}
	cfg = core.NewConfig(variant, f.D, f.C, f.Seed+1)
	cfg.MaxRounds = f.MaxRounds
	cfg.Workers = f.Workers
	cfg.Shards = f.Shards
	cfg.SparseSwitchDivisor = f.SparseDivisor
	cfg.Engine = engine
	cfg.Steal = steal
	cfg.Autotune = tune
	if cfg.C > 0 {
		if err := cfg.Validate(); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}
