package cli

import (
	"math"
	"strings"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/core"
)

func TestDefaultDelta(t *testing.T) {
	if DefaultDelta(1) != 1 {
		t.Errorf("DefaultDelta(1) = %d", DefaultDelta(1))
	}
	if got := DefaultDelta(1024); got != 100 {
		t.Errorf("DefaultDelta(1024) = %d, want 100", got)
	}
	if DefaultDelta(4) > 4 {
		t.Error("delta must never exceed n")
	}
}

func TestBuildAllKinds(t *testing.T) {
	for _, kind := range Kinds() {
		spec := GraphSpec{Kind: kind, N: 256, Seed: 7}
		g, err := spec.Build()
		if err != nil {
			t.Fatalf("kind %q: %v", kind, err)
		}
		if g.NumClients() != 256 || g.NumServers() != 256 {
			t.Errorf("kind %q: wrong dimensions %d/%d", kind, g.NumClients(), g.NumServers())
		}
		if err := g.Validate(); err != nil {
			t.Errorf("kind %q: invalid graph: %v", kind, err)
		}
	}
}

func TestBuildDefaultsToRegular(t *testing.T) {
	g, err := GraphSpec{N: 128, Delta: 8, Seed: 1}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsRegular(8) {
		t.Error("empty kind should build a regular graph")
	}
}

func TestBuildRespectsExplicitDelta(t *testing.T) {
	g, err := GraphSpec{Kind: "trust", N: 200, Delta: 13, Seed: 2}.Build()
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumClients(); v++ {
		if g.ClientDegree(v) != 13 {
			t.Fatalf("client %d degree %d, want 13", v, g.ClientDegree(v))
		}
	}
}

func TestBuildProximityExpectedDegree(t *testing.T) {
	spec := GraphSpec{Kind: "proximity", N: 2000, ExpectedDegree: 40, Seed: 3}
	g, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if math.Abs(st.MeanClientDeg-40) > 10 {
		t.Errorf("mean degree %v, want about 40", st.MeanClientDeg)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := (GraphSpec{Kind: "regular", N: 0}).Build(); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := (GraphSpec{Kind: "nope", N: 16}).Build(); err == nil {
		t.Error("unknown kind accepted")
	} else if !strings.Contains(err.Error(), "unknown graph family") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestParseProtocol(t *testing.T) {
	cases := map[string]core.Variant{
		"saer": core.SAER, "SAER": core.SAER, " Saer ": core.SAER,
		"raes": core.RAES, "RAES": core.RAES,
	}
	for in, want := range cases {
		got, err := ParseProtocol(in)
		if err != nil || got != want {
			t.Errorf("ParseProtocol(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseProtocol("greedy"); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestParseEngineMode(t *testing.T) {
	cases := map[string]core.EngineMode{
		"auto": core.EngineAuto, "AUTO": core.EngineAuto, "": core.EngineAuto,
		"dense": core.EngineDense, " Dense ": core.EngineDense,
		"sparse": core.EngineSparse, "SPARSE": core.EngineSparse,
	}
	for in, want := range cases {
		got, err := ParseEngineMode(in)
		if err != nil || got != want {
			t.Errorf("ParseEngineMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseEngineMode("turbo"); err == nil {
		t.Error("unknown engine mode accepted")
	}
}

func TestParseStealMode(t *testing.T) {
	cases := map[string]core.StealMode{
		"auto": core.StealAuto, "AUTO": core.StealAuto, "": core.StealAuto,
		"on": core.StealOn, " On ": core.StealOn,
		"off": core.StealOff, "OFF": core.StealOff,
	}
	for in, want := range cases {
		got, err := ParseStealMode(in)
		if err != nil || got != want {
			t.Errorf("ParseStealMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseStealMode("sometimes"); err == nil {
		t.Error("unknown steal mode accepted")
	}
}

func TestParseAutotuneMode(t *testing.T) {
	cases := map[string]core.AutotuneMode{
		"on": core.AutotuneOn, "ON": core.AutotuneOn, "": core.AutotuneOn,
		"off": core.AutotuneOff, " Off ": core.AutotuneOff,
	}
	for in, want := range cases {
		got, err := ParseAutotuneMode(in)
		if err != nil || got != want {
			t.Errorf("ParseAutotuneMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseAutotuneMode("maybe"); err == nil {
		t.Error("unknown autotune mode accepted")
	}
}

func TestParseTopologyMode(t *testing.T) {
	cases := map[string]TopologyMode{
		"csr": TopologyCSR, "CSR": TopologyCSR, "": TopologyCSR,
		"implicit": TopologyImplicit, " Implicit ": TopologyImplicit,
		"implicit-csr": TopologyImplicitCSR,
	}
	for in, want := range cases {
		got, err := ParseTopologyMode(in)
		if err != nil || got != want {
			t.Errorf("ParseTopologyMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseTopologyMode("streaming"); err == nil {
		t.Error("unknown topology mode accepted")
	}
}

func TestBuildTopologyImplicitFamilies(t *testing.T) {
	for _, kind := range []string{"regular", "erdos", "trust", "almost"} {
		spec := GraphSpec{Kind: kind, N: 256, Seed: 7}
		topo, err := spec.BuildTopology(TopologyImplicit)
		if err != nil {
			t.Fatalf("kind %q: %v", kind, err)
		}
		if topo.NumClients() != 256 || topo.NumServers() != 256 {
			t.Errorf("kind %q: wrong dimensions %d/%d", kind, topo.NumClients(), topo.NumServers())
		}
		if err := topo.Validate(); err != nil {
			t.Errorf("kind %q: invalid topology: %v", kind, err)
		}
		// The materialized twin holds the identical edge multiset in the
		// identical per-client order.
		csr, err := spec.BuildTopology(TopologyImplicitCSR)
		if err != nil {
			t.Fatalf("kind %q implicit-csr: %v", kind, err)
		}
		var buf []int32
		for v := 0; v < topo.NumClients(); v++ {
			buf = topo.AppendClientNeighbors(v, buf[:0])
			row := csr.AppendClientNeighbors(v, nil)
			if len(buf) != len(row) {
				t.Fatalf("kind %q client %d: implicit degree %d, csr %d", kind, v, len(buf), len(row))
			}
			for i := range buf {
				if buf[i] != row[i] {
					t.Fatalf("kind %q client %d slot %d: implicit %d, csr %d", kind, v, i, buf[i], row[i])
				}
			}
		}
	}
}

func TestBuildTopologyImplicitUnsupportedKind(t *testing.T) {
	if _, err := (GraphSpec{Kind: "proximity", N: 256, Seed: 1}).BuildTopology(TopologyImplicit); err == nil {
		t.Error("proximity should have no implicit topology")
	}
}

func TestBuildTopologyCSRMatchesBuild(t *testing.T) {
	spec := GraphSpec{Kind: "trust", N: 128, Delta: 9, Seed: 4}
	topo, err := spec.BuildTopology(TopologyCSR)
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	csr, ok := topo.(*bipartite.Graph)
	if !ok {
		t.Fatalf("TopologyCSR returned %T, want *bipartite.Graph", topo)
	}
	if csr.NumEdges() != g.NumEdges() {
		t.Errorf("edge counts differ: %d vs %d", csr.NumEdges(), g.NumEdges())
	}
}
