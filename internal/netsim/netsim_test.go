package netsim

import (
	"testing"
	"testing/quick"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rng"
)

func testGraph(t testing.TB, n, delta int, seed uint64) *bipartite.Graph {
	t.Helper()
	g, err := gen.Regular(n, delta, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNetsimCompletes(t *testing.T) {
	g := testGraph(t, 512, 30, 1)
	res, err := Run(g, core.SAER, core.Params{D: 2, C: 4, Seed: 9}, core.Options{TrackLoads: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("netsim run did not complete: %v", res)
	}
	if res.MaxLoad > res.LoadBound() {
		t.Errorf("max load %d exceeds cap %d", res.MaxLoad, res.LoadBound())
	}
	total := 0
	for _, l := range res.Loads {
		total += l
	}
	if total != 512*2 {
		t.Errorf("total load %d, want %d", total, 512*2)
	}
}

// TestNetsimMatchesCoreExactly is the cross-validation test: the
// channel-based engine and the array-based engine realize the same random
// process, so with identical seeds every observable outcome must agree.
func TestNetsimMatchesCoreExactly(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		delta   int
		variant core.Variant
		params  core.Params
	}{
		{"saer-easy", 512, 30, core.SAER, core.Params{D: 2, C: 4, Seed: 11}},
		{"saer-tight", 512, 30, core.SAER, core.Params{D: 2, C: 2, Seed: 12}},
		{"raes-easy", 512, 30, core.RAES, core.Params{D: 3, C: 4, Seed: 13}},
		{"raes-tight", 256, 20, core.RAES, core.Params{D: 2, C: 1.75, Seed: 14}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := testGraph(t, tc.n, tc.delta, 100+uint64(tc.n))
			opts := core.Options{TrackRounds: true, TrackLoads: true}
			fast, err := core.Run(g, tc.variant, tc.params, opts)
			if err != nil {
				t.Fatal(err)
			}
			slow, err := Run(g, tc.variant, tc.params, opts)
			if err != nil {
				t.Fatal(err)
			}
			if fast.Completed != slow.Completed || fast.Rounds != slow.Rounds {
				t.Fatalf("completion/rounds differ: core=%v netsim=%v", fast, slow)
			}
			if fast.TotalRequests != slow.TotalRequests || fast.Work != slow.Work {
				t.Fatalf("work differs: core=%d netsim=%d", fast.Work, slow.Work)
			}
			if fast.MaxLoad != slow.MaxLoad || fast.MinLoad != slow.MinLoad || fast.BurnedServers != slow.BurnedServers {
				t.Fatalf("load/burned stats differ: core=%v netsim=%v", fast, slow)
			}
			if fast.SaturationEvents != slow.SaturationEvents {
				t.Fatalf("saturation events differ: core=%d netsim=%d", fast.SaturationEvents, slow.SaturationEvents)
			}
			for u := range fast.Loads {
				if fast.Loads[u] != slow.Loads[u] {
					t.Fatalf("server %d load differs: core=%d netsim=%d", u, fast.Loads[u], slow.Loads[u])
				}
			}
			if len(fast.PerRound) != len(slow.PerRound) {
				t.Fatalf("per-round series lengths differ")
			}
			for i := range fast.PerRound {
				a, b := fast.PerRound[i], slow.PerRound[i]
				if a.RequestsSent != b.RequestsSent || a.RequestsAccepted != b.RequestsAccepted ||
					a.NewlyBurned != b.NewlyBurned || a.BurnedTotal != b.BurnedTotal {
					t.Fatalf("round %d differs: core=%+v netsim=%+v", i+1, a, b)
				}
			}
		})
	}
}

func TestNetsimRequestCountsAndInitialLoads(t *testing.T) {
	g := testGraph(t, 256, 24, 3)
	counts := make([]int, 256)
	src := rng.New(5)
	for i := range counts {
		counts[i] = src.Intn(3)
	}
	init := make([]int, 256)
	for i := range init {
		init[i] = 2
	}
	opts := core.Options{RequestCounts: counts, InitialLoads: init, TrackLoads: true}
	params := core.Params{D: 2, C: 4, Seed: 77}
	fast, err := core.Run(g, core.SAER, params, opts)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(g, core.SAER, params, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Rounds != slow.Rounds || fast.MaxLoad != slow.MaxLoad || fast.Completed != slow.Completed {
		t.Fatalf("engines disagree on the general case: core=%v netsim=%v", fast, slow)
	}
	for u := range fast.Loads {
		if fast.Loads[u] != slow.Loads[u] {
			t.Fatalf("server %d load differs", u)
		}
	}
}

func TestNetsimValidation(t *testing.T) {
	g := testGraph(t, 64, 8, 4)
	if _, err := Run(g, core.SAER, core.Params{D: 0, C: 4}, core.Options{}); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := Run(g, core.Variant(9), core.Params{D: 2, C: 4}, core.Options{}); err == nil {
		t.Error("unknown variant accepted")
	}
	if _, err := Run(g, core.SAER, core.Params{D: 2, C: 4}, core.Options{InitialLoads: []int{1}}); err == nil {
		t.Error("wrong-length InitialLoads accepted")
	}
	if _, err := Run(g, core.SAER, core.Params{D: 2, C: 4}, core.Options{RequestCounts: []int{1}}); err == nil {
		t.Error("wrong-length RequestCounts accepted")
	}
	bad, err := bipartite.NewBuilder(2, 2).AddEdge(0, 0).Build(bipartite.KeepParallelEdges)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(bad, core.SAER, core.Params{D: 2, C: 4}, core.Options{}); err == nil {
		t.Error("isolated client accepted")
	}
}

func TestNetsimRoundCap(t *testing.T) {
	// Two clients forced onto one server with capacity 2 cannot place 4
	// balls; RAES has no starvation exit so the run must stop at the cap.
	b := bipartite.NewBuilder(2, 1)
	b.AddEdge(0, 0).AddEdge(1, 0)
	g, err := b.Build(bipartite.KeepParallelEdges)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, core.RAES, core.Params{D: 2, C: 1, Seed: 1, MaxRounds: 7}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Error("impossible instance reported complete")
	}
	if res.Rounds != 7 {
		t.Errorf("rounds %d, want the cap 7", res.Rounds)
	}
	// Both clients aim every ball at the single server, so each round sees
	// 4 > 2 requests and RAES rejects them all: nothing is ever placed.
	if res.UnassignedBalls != 4 {
		t.Errorf("unassigned %d, want 4", res.UnassignedBalls)
	}
}

// Property: on random instances the two engines always agree on the
// summary outcome.
func TestQuickEnginesAgree(t *testing.T) {
	f := func(seed uint64, nRaw uint8, tight bool) bool {
		n := 64 + int(nRaw%64)
		g, err := gen.Regular(n, 12, rng.New(seed))
		if err != nil {
			return false
		}
		c := 4.0
		if tight {
			c = 2.0
		}
		params := core.Params{D: 2, C: c, Seed: seed ^ 0xbeef}
		fast, err := core.Run(g, core.RAES, params, core.Options{})
		if err != nil {
			return false
		}
		slow, err := Run(g, core.RAES, params, core.Options{})
		if err != nil {
			return false
		}
		return fast.Rounds == slow.Rounds && fast.MaxLoad == slow.MaxLoad &&
			fast.TotalRequests == slow.TotalRequests && fast.BurnedServers == slow.BurnedServers
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
