// Package netsim is a message-passing implementation of the same
// synchronous client–server model simulated by package core: every client
// and every server is its own goroutine, requests and accept/reject
// answers travel over channels, and a coordinator drives the two-phase
// round structure with explicit barriers.
//
// The array-based engine in package core is the fast path used by the
// experiments; netsim exists for two reasons:
//
//  1. Fidelity — it realizes the paper's fully decentralized model
//     literally (entities only exchange messages over the edges of the
//     graph, servers answer one bit per request), which makes it a useful
//     executable specification.
//  2. Cross-validation — given the same seed it reproduces, message for
//     message, the exact random process of the array engine, so the test
//     suite can assert that both implementations agree on every outcome
//     (rounds, loads, burned servers). A bug in either implementation
//     would have to be mirrored in the other to go unnoticed.
//
// netsim is intentionally not optimized; use core.Run for large
// simulations.
package netsim

import (
	"fmt"
	"sync"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/rng"
)

// request is a single ball submission travelling from a client to a
// server. The reply channel is where the server must answer with one bit.
type request struct {
	reply chan<- bool
}

// clientReport is what a client tells the coordinator after it has
// received all of its answers for the round.
type clientReport struct {
	accepted int
}

// serverReport is what a server tells the coordinator after deciding a
// round.
type serverReport struct {
	server      int
	load        int
	newlyBurned bool
	saturated   bool
}

// Run executes one protocol run of the selected variant using one
// goroutine per client and per server. It accepts the same parameters as
// core.Run and returns a core.Result with the aggregate fields populated
// (per-round neighborhood statistics are not computed by this engine; the
// TrackNeighborhoods option is ignored).
//
// The random process is identical to core.Run's for the same seed: each
// client owns the same private stream and draws destinations in the same
// ball order, and servers apply the same threshold rules.
func Run(g *bipartite.Graph, variant core.Variant, p core.Params, opts core.Options) (*core.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("netsim: %w", err)
	}
	if variant != core.SAER && variant != core.RAES {
		return nil, fmt.Errorf("netsim: unknown protocol variant %d", int(variant))
	}
	if opts.InitialLoads != nil && len(opts.InitialLoads) != g.NumServers() {
		return nil, fmt.Errorf("netsim: InitialLoads has %d entries for %d servers", len(opts.InitialLoads), g.NumServers())
	}
	if opts.RequestCounts != nil {
		if len(opts.RequestCounts) != g.NumClients() {
			return nil, fmt.Errorf("netsim: RequestCounts has %d entries for %d clients", len(opts.RequestCounts), g.NumClients())
		}
		for v, c := range opts.RequestCounts {
			if c < 0 || c > p.D {
				return nil, fmt.Errorf("netsim: RequestCounts[%d] = %d outside [0, D=%d]", v, c, p.D)
			}
		}
	}

	n := g.NumClients()
	m := g.NumServers()
	maxRounds := p.MaxRounds
	if maxRounds == 0 {
		maxRounds = core.DefaultMaxRounds(n)
	}
	capacity := int32(p.Capacity())
	streams := rng.NewStreamSlice(p.Seed, n)

	// Per-server inbox channels (buffered; servers drain them actively
	// during phase 1) and per-client reply channels (buffered to the
	// client's maximum number of outstanding requests, so servers never
	// block when answering).
	inbox := make([]chan request, m)
	for u := range inbox {
		inbox[u] = make(chan request, 16)
	}
	replies := make([]chan bool, n)
	for v := range replies {
		replies[v] = make(chan bool, p.D)
	}

	// Per-entity control channels: each client/server owns its own start
	// (decide) channel so that a fast entity looping back into the next
	// round can never steal a token addressed to a slower one.
	clientStart := make([]chan struct{}, n)
	for v := range clientStart {
		clientStart[v] = make(chan struct{}, 1)
	}
	serverDecide := make([]chan struct{}, m)
	for u := range serverDecide {
		serverDecide[u] = make(chan struct{}, 1)
	}
	sendDone := make(chan struct{}, n)          // client ack: "all my requests are submitted"
	clientReports := make(chan clientReport, n) // end-of-round client reports
	serverReports := make(chan serverReport, m) // end-of-round server reports
	stop := make(chan struct{})                 // closed once the run is over

	var wg sync.WaitGroup

	// --- Server goroutines -------------------------------------------------
	for u := 0; u < m; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			var load, receivedTotal int32
			burned := false
			if opts.InitialLoads != nil {
				l := opts.InitialLoads[u]
				if l < 0 {
					l = 0
				}
				load = int32(l)
				receivedTotal = int32(l)
				if load >= capacity {
					burned = true
				}
			}
			pending := make([]request, 0, 16)
			for {
				pending = pending[:0]
			collect:
				for {
					select {
					case req := <-inbox[u]:
						pending = append(pending, req)
					case <-serverDecide[u]:
						// Every client has acknowledged that its sends
						// completed, so anything left is sitting in the
						// buffer; drain it without blocking.
						for {
							select {
							case req := <-inbox[u]:
								pending = append(pending, req)
							default:
								break collect
							}
						}
					case <-stop:
						return
					}
				}

				recv := int32(len(pending))
				accept := false
				newlyBurned := false
				saturated := false
				if recv > 0 {
					receivedTotal += recv
					switch variant {
					case core.SAER:
						if !burned {
							if receivedTotal > capacity {
								burned = true
								newlyBurned = true
								saturated = true
							} else {
								load += recv
								accept = true
							}
						}
					case core.RAES:
						if !burned && receivedTotal > capacity {
							burned = true
							newlyBurned = true
						}
						if load+recv > capacity {
							saturated = true
						} else {
							load += recv
							accept = true
						}
					}
				}
				for _, req := range pending {
					req.reply <- accept
				}
				serverReports <- serverReport{server: u, load: int(load), newlyBurned: newlyBurned, saturated: saturated}
			}
		}(u)
	}

	// --- Client goroutines --------------------------------------------------
	for v := 0; v < n; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			alive := p.D
			if opts.RequestCounts != nil {
				alive = opts.RequestCounts[v]
			}
			nbrs := g.ClientNeighbors(v)
			src := &streams[v]
			for {
				select {
				case <-clientStart[v]:
				case <-stop:
					return
				}
				sent := alive
				for i := 0; i < sent; i++ {
					u := nbrs[src.Intn(len(nbrs))]
					inbox[u] <- request{reply: replies[v]}
				}
				sendDone <- struct{}{}
				accepted := 0
				for i := 0; i < sent; i++ {
					if <-replies[v] {
						accepted++
					}
				}
				alive -= accepted
				clientReports <- clientReport{accepted: accepted}
			}
		}(v)
	}

	// --- Coordinator ---------------------------------------------------------
	res := &core.Result{
		Variant:    variant,
		Params:     p,
		NumClients: n,
		NumServers: m,
	}
	totalBalls := int64(0)
	if opts.RequestCounts != nil {
		for _, c := range opts.RequestCounts {
			totalBalls += int64(c)
		}
	} else {
		totalBalls = int64(n) * int64(p.D)
	}
	res.TotalBalls = totalBalls

	aliveTotal := totalBalls
	burnedTotal := 0
	loads := make([]int, m)
	trackRounds := opts.TrackRounds || opts.TrackNeighborhoods
	round := 0
	for aliveTotal > 0 && round < maxRounds {
		round++
		requestsThisRound := aliveTotal

		// Phase 1: release every client and wait until all of them have
		// finished submitting their requests.
		for v := 0; v < n; v++ {
			clientStart[v] <- struct{}{}
		}
		for i := 0; i < n; i++ {
			<-sendDone
		}
		// Phase 2: let every server decide on this round's batch.
		for u := 0; u < m; u++ {
			serverDecide[u] <- struct{}{}
		}
		// Collect the round outcome.
		accepted := int64(0)
		for i := 0; i < n; i++ {
			rep := <-clientReports
			accepted += int64(rep.accepted)
		}
		newlyBurned, saturated := 0, 0
		for u := 0; u < m; u++ {
			sr := <-serverReports
			loads[sr.server] = sr.load
			if sr.newlyBurned {
				newlyBurned++
			}
			if sr.saturated {
				saturated++
			}
		}

		burnedTotal += newlyBurned
		res.TotalRequests += requestsThisRound
		res.SaturationEvents += int64(saturated)
		aliveTotal -= accepted
		if trackRounds {
			res.PerRound = append(res.PerRound, core.RoundStats{
				Round:              round,
				AliveBalls:         int(requestsThisRound),
				RequestsSent:       int(requestsThisRound),
				RequestsAccepted:   int(accepted),
				NewlyBurned:        newlyBurned,
				BurnedTotal:        burnedTotal,
				SaturatedThisRound: saturated,
			})
		}
	}
	close(stop)
	wg.Wait()

	res.Rounds = round
	res.Work = 2 * res.TotalRequests
	res.UnassignedBalls = int(aliveTotal)
	res.Completed = aliveTotal == 0
	res.BurnedServers = burnedTotal

	maxLoad, minLoad := 0, int(^uint(0)>>1)
	var sum int64
	for _, l := range loads {
		if l > maxLoad {
			maxLoad = l
		}
		if l < minLoad {
			minLoad = l
		}
		sum += int64(l)
	}
	if m == 0 {
		minLoad = 0
	}
	res.MaxLoad = maxLoad
	res.MinLoad = minLoad
	res.MeanLoad = float64(sum) / float64(m)
	if opts.TrackLoads {
		res.Loads = append([]int(nil), loads...)
	}
	return res, nil
}
