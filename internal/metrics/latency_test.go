package metrics

import (
	"testing"
	"time"
)

func TestSummarizeLatencies(t *testing.T) {
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond // 1ms..100ms
	}
	s := SummarizeLatencies(samples)
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Max != 100*time.Millisecond {
		t.Errorf("max = %v", s.Max)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Errorf("mean = %v", s.Mean)
	}
	// Linear interpolation over 1..100ms: p50 is between 50 and 51ms.
	if s.P50 < 50*time.Millisecond || s.P50 > 51*time.Millisecond {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.P99 < 99*time.Millisecond || s.P99 > 100*time.Millisecond {
		t.Errorf("p99 = %v", s.P99)
	}
	if s.P50 >= s.P90 || s.P90 >= s.P99 {
		t.Errorf("quantiles not increasing: %v", s)
	}
}

// TestSummarizeLatenciesEdgeCases pins the degenerate inputs the R-7
// interpolation must handle: no samples (zero summary), one sample
// (every quantile is that sample), and all-duplicate samples (the
// interpolation between equal neighbors is the value itself).
func TestSummarizeLatenciesEdgeCases(t *testing.T) {
	const ms = time.Millisecond
	cases := []struct {
		name    string
		samples []time.Duration
		want    LatencySummary
	}{
		{"empty-nil", nil, LatencySummary{}},
		{"empty-slice", []time.Duration{}, LatencySummary{}},
		{"single", []time.Duration{7 * ms},
			LatencySummary{Count: 1, Mean: 7 * ms, P50: 7 * ms, P90: 7 * ms, P99: 7 * ms, Max: 7 * ms}},
		{"duplicates", []time.Duration{3 * ms, 3 * ms, 3 * ms, 3 * ms},
			LatencySummary{Count: 4, Mean: 3 * ms, P50: 3 * ms, P90: 3 * ms, P99: 3 * ms, Max: 3 * ms}},
		{"two-samples", []time.Duration{10 * ms, 20 * ms},
			// p·(n−1) over two points interpolates linearly between them.
			LatencySummary{Count: 2, Mean: 15 * ms, P50: 15 * ms, P90: 19 * ms,
				P99: time.Duration(19.9 * float64(ms)), Max: 20 * ms}},
		{"unsorted-duplicates", []time.Duration{5 * ms, 1 * ms, 5 * ms, 1 * ms, 5 * ms},
			// Sorted: [1,1,5,5,5]; p50 at rank 2 is exact, p90 at 3.6 and
			// p99 at 3.96 interpolate between equal neighbors.
			LatencySummary{Count: 5, Mean: time.Duration(3.4 * float64(ms)),
				P50: 5 * ms, P90: 5 * ms, P99: 5 * ms, Max: 5 * ms}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := SummarizeLatencies(tc.samples); got != tc.want {
				t.Errorf("SummarizeLatencies = %+v, want %+v", got, tc.want)
			}
		})
	}
}

func TestThroughput(t *testing.T) {
	tp := Throughput{Requests: 1_000_000, Elapsed: 2 * time.Second, Cores: 4}
	if got := tp.PerSecond(); got != 500_000 {
		t.Errorf("req/s = %v", got)
	}
	if got := tp.PerSecondPerCore(); got != 125_000 {
		t.Errorf("req/s/core = %v", got)
	}
	if (Throughput{Requests: 5}).PerSecond() != 0 {
		t.Error("zero elapsed should yield zero rate")
	}
}
