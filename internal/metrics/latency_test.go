package metrics

import (
	"testing"
	"time"
)

func TestSummarizeLatencies(t *testing.T) {
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond // 1ms..100ms
	}
	s := SummarizeLatencies(samples)
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Max != 100*time.Millisecond {
		t.Errorf("max = %v", s.Max)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Errorf("mean = %v", s.Mean)
	}
	// Linear interpolation over 1..100ms: p50 is between 50 and 51ms.
	if s.P50 < 50*time.Millisecond || s.P50 > 51*time.Millisecond {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.P99 < 99*time.Millisecond || s.P99 > 100*time.Millisecond {
		t.Errorf("p99 = %v", s.P99)
	}
	if s.P50 >= s.P90 || s.P90 >= s.P99 {
		t.Errorf("quantiles not increasing: %v", s)
	}
}

func TestSummarizeLatenciesEmpty(t *testing.T) {
	if s := SummarizeLatencies(nil); s != (LatencySummary{}) {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestThroughput(t *testing.T) {
	tp := Throughput{Requests: 1_000_000, Elapsed: 2 * time.Second, Cores: 4}
	if got := tp.PerSecond(); got != 500_000 {
		t.Errorf("req/s = %v", got)
	}
	if got := tp.PerSecondPerCore(); got != 125_000 {
		t.Errorf("req/s/core = %v", got)
	}
	if (Throughput{Requests: 5}).PerSecond() != 0 {
		t.Error("zero elapsed should yield zero rate")
	}
}
