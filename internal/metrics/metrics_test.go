package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rng"
)

func TestAnalyzeLoadsUniform(t *testing.T) {
	loads := []int{3, 3, 3, 3}
	d := AnalyzeLoads(loads)
	if d.Max != 3 || d.Min != 3 || d.Mean != 3 || d.Std != 0 {
		t.Errorf("uniform loads mis-summarized: %+v", d)
	}
	if math.Abs(d.Imbalance-1) > 1e-12 {
		t.Errorf("imbalance %v, want 1", d.Imbalance)
	}
	if math.Abs(d.Gini) > 1e-12 {
		t.Errorf("gini %v, want 0", d.Gini)
	}
	if d.EmptyServers != 0 {
		t.Errorf("empty servers %d, want 0", d.EmptyServers)
	}
	if d.Histogram[3] != 4 {
		t.Errorf("histogram %v", d.Histogram)
	}
}

func TestAnalyzeLoadsSkewed(t *testing.T) {
	// All load on one server out of four.
	loads := []int{8, 0, 0, 0}
	d := AnalyzeLoads(loads)
	if d.Max != 8 || d.Min != 0 || d.Mean != 2 {
		t.Errorf("skewed loads mis-summarized: %+v", d)
	}
	if math.Abs(d.Imbalance-4) > 1e-12 {
		t.Errorf("imbalance %v, want 4", d.Imbalance)
	}
	// Gini for all-on-one with n=4 is (n-1)/n = 0.75.
	if math.Abs(d.Gini-0.75) > 1e-12 {
		t.Errorf("gini %v, want 0.75", d.Gini)
	}
	if d.EmptyServers != 3 {
		t.Errorf("empty servers %d, want 3", d.EmptyServers)
	}
}

func TestAnalyzeLoadsEmpty(t *testing.T) {
	d := AnalyzeLoads(nil)
	if d.Servers != 0 || d.Max != 0 || d.Gini != 0 {
		t.Errorf("empty loads mis-summarized: %+v", d)
	}
	allZero := AnalyzeLoads([]int{0, 0})
	if allZero.Gini != 0 || allZero.Imbalance != 0 {
		t.Errorf("all-zero loads mis-summarized: %+v", allZero)
	}
	if d.String() == "" || allZero.String() == "" {
		t.Error("empty String output")
	}
}

func runTrials(t *testing.T, trials int, track bool) []*core.Result {
	t.Helper()
	g, err := gen.Regular(512, 30, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{}
	if track {
		opts.TrackNeighborhoods = true
	}
	out := make([]*core.Result, 0, trials)
	for i := 0; i < trials; i++ {
		res, err := core.Run(g, core.SAER, core.Params{D: 2, C: 4, Seed: uint64(100 + i)}, opts)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, res)
	}
	return out
}

func TestAggregate(t *testing.T) {
	results := runTrials(t, 5, false)
	agg := Aggregate(results)
	if agg.Trials != 5 {
		t.Errorf("trials %d, want 5", agg.Trials)
	}
	if agg.SuccessRate != 1 {
		t.Errorf("success rate %v, want 1", agg.SuccessRate)
	}
	if agg.Rounds.Mean <= 0 || agg.Work.Mean <= 0 || agg.MaxLoad.Mean <= 0 {
		t.Errorf("degenerate aggregate: %+v", agg)
	}
	if agg.WorkPerBall.Mean < 2 {
		t.Errorf("work per ball %v below 2", agg.WorkPerBall.Mean)
	}
	if agg.String() == "" {
		t.Error("empty aggregate string")
	}
}

func TestAggregateTracksBurnedFraction(t *testing.T) {
	results := runTrials(t, 3, true)
	agg := Aggregate(results)
	if agg.MaxBurnedFraction.Count != 3 {
		t.Errorf("burned-fraction summary over %d trials, want 3", agg.MaxBurnedFraction.Count)
	}
	if agg.MaxBurnedFraction.Max > 0.5 {
		t.Errorf("burned fraction max %v above 1/2 with c=4 on an easy instance", agg.MaxBurnedFraction.Max)
	}
}

func TestAggregateEmpty(t *testing.T) {
	agg := Aggregate(nil)
	if agg.Trials != 0 || agg.SuccessRate != 0 {
		t.Errorf("empty aggregate: %+v", agg)
	}
}

func TestSeriesExtraction(t *testing.T) {
	results := runTrials(t, 1, true)
	r := results[0]
	alive := SeriesAliveBalls(r)
	frac := SeriesBurnedFraction(r)
	recv := SeriesMaxNeighborhoodReceived(r)
	kt := SeriesKt(r)
	if len(alive.Values) != r.Rounds || len(frac.Values) != r.Rounds || len(recv.Values) != r.Rounds || len(kt.Values) != r.Rounds {
		t.Fatalf("series lengths do not match rounds %d", r.Rounds)
	}
	if alive.Values[0] != float64(512*2) {
		t.Errorf("first alive value %v, want all balls", alive.Values[0])
	}
	for i := 1; i < len(alive.Values); i++ {
		if alive.Values[i] > alive.Values[i-1] {
			t.Error("alive balls increased between rounds")
			break
		}
	}
	for i, v := range frac.Values {
		if v < 0 || v > 1 {
			t.Errorf("burned fraction %v at round %d outside [0,1]", v, i+1)
		}
	}
	if alive.Name == "" || frac.Name == "" || recv.Name == "" || kt.Name == "" {
		t.Error("series should be named")
	}
}

// Property: Gini is always within [0,1] and 0 for constant loads.
func TestQuickGiniBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		loads := make([]int, len(raw))
		for i, v := range raw {
			loads[i] = int(v)
		}
		d := AnalyzeLoads(loads)
		if d.Gini < -1e-9 || d.Gini > 1+1e-9 {
			return false
		}
		if len(loads) > 0 {
			constant := make([]int, len(loads))
			for i := range constant {
				constant[i] = 5
			}
			if math.Abs(AnalyzeLoads(constant).Gini) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the histogram counts always sum to the number of servers.
func TestQuickHistogramTotal(t *testing.T) {
	f := func(raw []uint8) bool {
		loads := make([]int, len(raw))
		for i, v := range raw {
			loads[i] = int(v % 16)
		}
		d := AnalyzeLoads(loads)
		total := 0
		for _, c := range d.Histogram {
			total += c
		}
		return total == len(loads)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
