package metrics

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/stats"
)

// LatencySummary condenses a set of round-trip samples into the
// quantiles the service mode reports: the wire client captures one
// sample per protocol round (the full scatter/gather across the server
// shards) and summarizes them for PERFORMANCE.md and the -json records.
type LatencySummary struct {
	Count int
	Mean  time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// SummarizeLatencies computes the summary of the samples (order is not
// preserved; the slice is sorted in place). Zero samples yield the zero
// summary.
//
// Quantile method: linear interpolation between closest ranks (the
// "R-7" estimator, numpy's default) — quantile p of n sorted samples is
// read at position p·(n−1), interpolating between the two neighboring
// samples when that position is fractional. A single sample is every
// quantile of itself, duplicated samples interpolate to the duplicated
// value, and P50/P90/P99 are exact data points whenever p·(n−1) lands
// on an integer rank. The arithmetic is delegated to stats.Percentile
// so duration series and the float64 experiment series report identical
// quantiles.
func SummarizeLatencies(samples []time.Duration) LatencySummary {
	s := LatencySummary{Count: len(samples)}
	if len(samples) == 0 {
		return s
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	// One pass builds the float view all three quantiles share; the
	// interpolation matches stats.Percentile, so duration and float64
	// series report identical quantiles.
	xs := make([]float64, len(samples))
	var sum time.Duration
	for i, d := range samples {
		sum += d
		xs[i] = float64(d)
	}
	s.Mean = sum / time.Duration(len(samples))
	s.P50 = time.Duration(stats.Percentile(xs, 0.50))
	s.P90 = time.Duration(stats.Percentile(xs, 0.90))
	s.P99 = time.Duration(stats.Percentile(xs, 0.99))
	s.Max = samples[len(samples)-1]
	return s
}

// String renders the summary in one line.
func (s LatencySummary) String() string {
	return fmt.Sprintf("rounds=%d p50=%v p90=%v p99=%v max=%v mean=%v",
		s.Count, s.P50, s.P90, s.P99, s.Max, s.Mean)
}

// Throughput is the service mode's rate summary: request volume over
// wall-clock time, normalized per core so machines of different widths
// compare.
type Throughput struct {
	Requests int64
	Elapsed  time.Duration
	Cores    int
}

// PerSecond returns requests per second (0 for a zero elapsed time).
func (t Throughput) PerSecond() float64 {
	if t.Elapsed <= 0 {
		return 0
	}
	return float64(t.Requests) / t.Elapsed.Seconds()
}

// PerSecondPerCore returns requests per second per core.
func (t Throughput) PerSecondPerCore() float64 {
	if t.Cores <= 0 {
		return t.PerSecond()
	}
	return t.PerSecond() / float64(t.Cores)
}

// String renders the throughput in one line.
func (t Throughput) String() string {
	return fmt.Sprintf("requests=%d elapsed=%v req/s=%.0f req/s/core=%.0f",
		t.Requests, t.Elapsed.Round(time.Microsecond), t.PerSecond(), t.PerSecondPerCore())
}
