// Package metrics turns raw protocol results into the summary quantities
// the experiments report: load-distribution statistics for a single run
// and aggregates over repeated trials.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/stats"
)

// LoadDistribution summarizes a per-server load vector.
type LoadDistribution struct {
	Servers int
	Max     int
	Min     int
	Mean    float64
	Std     float64
	// Imbalance is Max/Mean, the classic load-imbalance factor (1 is
	// perfect balance). It is 0 when the mean is 0.
	Imbalance float64
	// Gini is the Gini coefficient of the load vector in [0,1]
	// (0 = perfectly even, 1 = all load on one server).
	Gini float64
	// Histogram maps a load value to the number of servers carrying it.
	Histogram map[int]int
	// EmptyServers is the number of servers with zero load.
	EmptyServers int
}

// AnalyzeLoads computes a LoadDistribution from a load vector.
func AnalyzeLoads(loads []int) LoadDistribution {
	d := LoadDistribution{
		Servers:   len(loads),
		Histogram: make(map[int]int),
	}
	if len(loads) == 0 {
		return d
	}
	d.Min = math.MaxInt
	var sum int64
	for _, l := range loads {
		if l > d.Max {
			d.Max = l
		}
		if l < d.Min {
			d.Min = l
		}
		if l == 0 {
			d.EmptyServers++
		}
		sum += int64(l)
		d.Histogram[l]++
	}
	d.Mean = float64(sum) / float64(len(loads))
	var ss float64
	for _, l := range loads {
		diff := float64(l) - d.Mean
		ss += diff * diff
	}
	d.Std = math.Sqrt(ss / float64(len(loads)))
	if d.Mean > 0 {
		d.Imbalance = float64(d.Max) / d.Mean
	}
	d.Gini = gini(loads)
	return d
}

// gini computes the Gini coefficient of non-negative integer loads.
func gini(loads []int) float64 {
	n := len(loads)
	if n == 0 {
		return 0
	}
	sorted := append([]int(nil), loads...)
	sort.Ints(sorted)
	var cum, total float64
	var weighted float64
	for i, l := range sorted {
		total += float64(l)
		weighted += float64(i+1) * float64(l)
		cum += float64(l)
	}
	_ = cum
	if total == 0 {
		return 0
	}
	// G = (2·Σ i·x_(i))/(n·Σ x) − (n+1)/n  with 1-based ranks over the
	// ascending order.
	return 2*weighted/(float64(n)*total) - float64(n+1)/float64(n)
}

// String renders the distribution in one line.
func (d LoadDistribution) String() string {
	return fmt.Sprintf("loads{servers=%d max=%d min=%d mean=%.2f std=%.2f imbalance=%.2f gini=%.3f empty=%d}",
		d.Servers, d.Max, d.Min, d.Mean, d.Std, d.Imbalance, d.Gini, d.EmptyServers)
}

// TrialAggregate summarizes repeated protocol executions with identical
// parameters but independent seeds.
type TrialAggregate struct {
	Trials      int
	SuccessRate float64 // fraction of trials that completed
	Rounds      stats.Summary
	Work        stats.Summary
	WorkPerBall stats.Summary
	MaxLoad     stats.Summary
	Burned      stats.Summary
	// MaxBurnedFraction is the per-trial maximum of S_t aggregated across
	// trials; only meaningful when the runs tracked neighborhoods.
	MaxBurnedFraction stats.Summary
}

// Aggregate combines results. Summaries of rounds/work/etc. include every
// trial (also incomplete ones); SuccessRate reports how many completed.
// It returns a zero aggregate when no results are given.
func Aggregate(results []*core.Result) TrialAggregate {
	agg := TrialAggregate{Trials: len(results)}
	if len(results) == 0 {
		return agg
	}
	rounds := make([]float64, 0, len(results))
	work := make([]float64, 0, len(results))
	wpb := make([]float64, 0, len(results))
	maxLoad := make([]float64, 0, len(results))
	burned := make([]float64, 0, len(results))
	burnedFrac := make([]float64, 0, len(results))
	completed := 0
	for _, r := range results {
		if r == nil {
			continue
		}
		if r.Completed {
			completed++
		}
		rounds = append(rounds, float64(r.Rounds))
		work = append(work, float64(r.Work))
		wpb = append(wpb, r.WorkPerBall())
		maxLoad = append(maxLoad, float64(r.MaxLoad))
		burned = append(burned, float64(r.BurnedServers))
		if len(r.PerRound) > 0 {
			maxFrac := 0.0
			for _, st := range r.PerRound {
				if st.MaxNeighborhoodBurnedFrac > maxFrac {
					maxFrac = st.MaxNeighborhoodBurnedFrac
				}
			}
			burnedFrac = append(burnedFrac, maxFrac)
		}
	}
	agg.SuccessRate = float64(completed) / float64(len(results))
	agg.Rounds = stats.MustSummarize(rounds)
	agg.Work = stats.MustSummarize(work)
	agg.WorkPerBall = stats.MustSummarize(wpb)
	agg.MaxLoad = stats.MustSummarize(maxLoad)
	agg.Burned = stats.MustSummarize(burned)
	if len(burnedFrac) > 0 {
		agg.MaxBurnedFraction = stats.MustSummarize(burnedFrac)
	}
	return agg
}

// String renders the aggregate in one line.
func (a TrialAggregate) String() string {
	return fmt.Sprintf("trials=%d success=%.0f%% rounds=%.1f±%.1f work/ball=%.2f maxLoad=%.1f (max %.0f)",
		a.Trials, 100*a.SuccessRate, a.Rounds.Mean, a.Rounds.Std, a.WorkPerBall.Mean, a.MaxLoad.Mean, a.MaxLoad.Max)
}

// RoundSeries extracts one per-round numeric series from a result.
type RoundSeries struct {
	Name   string
	Rounds []int
	Values []float64
}

// SeriesAliveBalls extracts the alive-ball series from a tracked result.
func SeriesAliveBalls(r *core.Result) RoundSeries {
	return extractSeries(r, "alive_balls", func(st core.RoundStats) float64 { return float64(st.AliveBalls) })
}

// SeriesBurnedFraction extracts the S_t series from a tracked result.
func SeriesBurnedFraction(r *core.Result) RoundSeries {
	return extractSeries(r, "max_burned_fraction", func(st core.RoundStats) float64 { return st.MaxNeighborhoodBurnedFrac })
}

// SeriesMaxNeighborhoodReceived extracts the r_t series from a tracked
// result.
func SeriesMaxNeighborhoodReceived(r *core.Result) RoundSeries {
	return extractSeries(r, "max_neighborhood_received", func(st core.RoundStats) float64 { return float64(st.MaxNeighborhoodReceived) })
}

// SeriesKt extracts the K_t series from a tracked result.
func SeriesKt(r *core.Result) RoundSeries {
	return extractSeries(r, "max_kt", func(st core.RoundStats) float64 { return st.MaxKt })
}

func extractSeries(r *core.Result, name string, f func(core.RoundStats) float64) RoundSeries {
	s := RoundSeries{Name: name}
	for _, st := range r.PerRound {
		s.Rounds = append(s.Rounds, st.Round)
		s.Values = append(s.Values, f(st))
	}
	return s
}
