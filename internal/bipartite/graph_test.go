package bipartite

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// buildSmall builds the 3-client / 3-server graph used by several tests:
//
//	c0 - {s0, s1}
//	c1 - {s1, s2}
//	c2 - {s0, s2}
func buildSmall(t *testing.T) *Graph {
	t.Helper()
	g, err := NewBuilder(3, 3).
		AddEdge(0, 0).AddEdge(0, 1).
		AddEdge(1, 1).AddEdge(1, 2).
		AddEdge(2, 0).AddEdge(2, 2).
		Build(KeepParallelEdges)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuilderBasic(t *testing.T) {
	g := buildSmall(t)
	if g.NumClients() != 3 || g.NumServers() != 3 {
		t.Fatalf("unexpected sizes: %d clients, %d servers", g.NumClients(), g.NumServers())
	}
	if g.NumEdges() != 6 {
		t.Fatalf("NumEdges = %d, want 6", g.NumEdges())
	}
	for v := 0; v < 3; v++ {
		if g.ClientDegree(v) != 2 {
			t.Errorf("client %d degree %d, want 2", v, g.ClientDegree(v))
		}
	}
	for u := 0; u < 3; u++ {
		if g.ServerDegree(u) != 2 {
			t.Errorf("server %d degree %d, want 2", u, g.ServerDegree(u))
		}
	}
}

func TestNeighborsMatchEdges(t *testing.T) {
	g := buildSmall(t)
	want := map[int][]int{0: {0, 1}, 1: {1, 2}, 2: {0, 2}}
	for v, servers := range want {
		got := g.ClientNeighbors(v)
		if len(got) != len(servers) {
			t.Fatalf("client %d has %d neighbors, want %d", v, len(got), len(servers))
		}
		for i, u := range servers {
			if int(got[i]) != u {
				t.Errorf("client %d neighbor %d = %d, want %d", v, i, got[i], u)
			}
		}
	}
}

func TestHasEdge(t *testing.T) {
	g := buildSmall(t)
	if !g.HasEdge(0, 0) || !g.HasEdge(1, 2) || !g.HasEdge(2, 0) {
		t.Error("existing edges not found")
	}
	if g.HasEdge(0, 2) || g.HasEdge(1, 0) {
		t.Error("non-existent edge reported present")
	}
	if g.HasEdge(-1, 0) || g.HasEdge(0, 5) || g.HasEdge(7, 7) {
		t.Error("out-of-range endpoints reported present")
	}
}

func TestBuildRejectsBadEndpoints(t *testing.T) {
	_, err := NewBuilder(2, 2).AddEdge(0, 2).Build(KeepParallelEdges)
	if !errors.Is(err, ErrVertexOutOfSide) {
		t.Fatalf("expected ErrVertexOutOfSide, got %v", err)
	}
	_, err = NewBuilder(2, 2).AddEdge(-1, 0).Build(KeepParallelEdges)
	if !errors.Is(err, ErrVertexOutOfSide) {
		t.Fatalf("expected ErrVertexOutOfSide, got %v", err)
	}
}

func TestBuildRejectsEmptySides(t *testing.T) {
	_, err := NewBuilder(0, 3).Build(KeepParallelEdges)
	if !errors.Is(err, ErrEmptyGraph) {
		t.Fatalf("expected ErrEmptyGraph, got %v", err)
	}
	_, err = NewBuilder(3, 0).Build(KeepParallelEdges)
	if !errors.Is(err, ErrEmptyGraph) {
		t.Fatalf("expected ErrEmptyGraph, got %v", err)
	}
}

func TestDedupEdges(t *testing.T) {
	g, err := NewBuilder(2, 2).
		AddEdge(0, 0).AddEdge(0, 0).AddEdge(0, 1).
		AddEdge(1, 1).AddEdge(1, 1).AddEdge(1, 1).
		Build(DedupEdges)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("deduped graph has %d edges, want 3", g.NumEdges())
	}
	if g.ClientDegree(0) != 2 || g.ClientDegree(1) != 1 {
		t.Errorf("unexpected degrees after dedup: %d, %d", g.ClientDegree(0), g.ClientDegree(1))
	}
}

func TestKeepParallelEdges(t *testing.T) {
	g, err := NewBuilder(1, 1).AddEdge(0, 0).AddEdge(0, 0).Build(KeepParallelEdges)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("parallel edges not kept: %d edges", g.NumEdges())
	}
}

func TestValidateDetectsIsolatedClient(t *testing.T) {
	g, err := NewBuilder(2, 2).AddEdge(0, 0).Build(KeepParallelEdges)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); !errors.Is(err, ErrIsolatedClient) {
		t.Fatalf("expected ErrIsolatedClient, got %v", err)
	}
	if err := buildSmall(t).Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
}

func TestStats(t *testing.T) {
	g := buildSmall(t)
	st := g.Stats()
	if st.MinClientDegree != 2 || st.MaxClientDegree != 2 {
		t.Errorf("client degrees [%d,%d], want [2,2]", st.MinClientDegree, st.MaxClientDegree)
	}
	if st.MinServerDegree != 2 || st.MaxServerDegree != 2 {
		t.Errorf("server degrees [%d,%d], want [2,2]", st.MinServerDegree, st.MaxServerDegree)
	}
	if st.RegularityRatio != 1 {
		t.Errorf("rho = %v, want 1", st.RegularityRatio)
	}
	if math.Abs(st.MeanClientDeg-2) > 1e-12 || math.Abs(st.MeanServerDeg-2) > 1e-12 {
		t.Errorf("mean degrees %v, %v, want 2", st.MeanClientDeg, st.MeanServerDeg)
	}
	logn := math.Log2(3)
	wantEta := 2 / (logn * logn)
	if math.Abs(st.Eta-wantEta) > 1e-12 {
		t.Errorf("eta = %v, want %v", st.Eta, wantEta)
	}
}

func TestStatsIsolatedClientRatioInf(t *testing.T) {
	g, err := NewBuilder(2, 2).AddEdge(0, 0).Build(KeepParallelEdges)
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if !math.IsInf(st.RegularityRatio, 1) {
		t.Errorf("rho = %v, want +Inf for isolated client", st.RegularityRatio)
	}
	if st.MinClientDegree != 0 {
		t.Errorf("min client degree %d, want 0", st.MinClientDegree)
	}
}

func TestIsRegular(t *testing.T) {
	g := buildSmall(t)
	if !g.IsRegular(2) {
		t.Error("2-regular graph not recognized")
	}
	if g.IsRegular(3) {
		t.Error("graph incorrectly reported 3-regular")
	}
}

func TestIsAlmostRegular(t *testing.T) {
	g := buildSmall(t)
	// With 3 clients, log²(3) ≈ 1.207, so ∆min(C)=2 >= 0.1·log²n and ρ=1 <= 2.
	if !g.IsAlmostRegular(0.1, 2) {
		t.Error("graph should satisfy a loose almost-regularity hypothesis")
	}
	if g.IsAlmostRegular(100, 2) {
		t.Error("graph should fail a demanding eta")
	}
	if g.IsAlmostRegular(0.1, 0.5) {
		t.Error("graph should fail rho < 1")
	}
}

func TestDegreeHistograms(t *testing.T) {
	g := buildSmall(t)
	ch := g.ClientDegreeHistogram()
	if ch[2] != 3 || len(ch) != 1 {
		t.Errorf("client histogram %v, want {2:3}", ch)
	}
	sh := g.ServerDegreeHistogram()
	if sh[2] != 3 || len(sh) != 1 {
		t.Errorf("server histogram %v, want {2:3}", sh)
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := buildSmall(t)
	edges := g.Edges()
	if len(edges) != g.NumEdges() {
		t.Fatalf("Edges() returned %d edges, want %d", len(edges), g.NumEdges())
	}
	rebuilt, err := NewBuilder(3, 3).AddEdges(edges).Build(KeepParallelEdges)
	if err != nil {
		t.Fatal(err)
	}
	if err := rebuilt.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if rebuilt.NumEdges() != g.NumEdges() {
		t.Fatalf("rebuilt graph has %d edges, want %d", rebuilt.NumEdges(), g.NumEdges())
	}
}

func TestCheckConsistency(t *testing.T) {
	if err := buildSmall(t).CheckConsistency(); err != nil {
		t.Fatalf("consistent graph reported inconsistent: %v", err)
	}
}

func TestStringSummary(t *testing.T) {
	s := buildSmall(t).String()
	if s == "" {
		t.Fatal("String returned empty summary")
	}
}

func TestQuickRandomGraphsConsistent(t *testing.T) {
	// Property: graphs built from arbitrary random edge lists always have
	// consistent CSR directions and degree sums equal on both sides.
	f := func(seed uint64, ncRaw, nsRaw, neRaw uint8) bool {
		nc := int(ncRaw%20) + 1
		ns := int(nsRaw%20) + 1
		ne := int(neRaw % 200)
		r := rng.New(seed)
		b := NewBuilder(nc, ns)
		for i := 0; i < ne; i++ {
			b.AddEdge(r.Intn(nc), r.Intn(ns))
		}
		g, err := b.Build(KeepParallelEdges)
		if err != nil {
			return false
		}
		if g.CheckConsistency() != nil {
			return false
		}
		sumC, sumS := 0, 0
		for v := 0; v < nc; v++ {
			sumC += g.ClientDegree(v)
		}
		for u := 0; u < ns; u++ {
			sumS += g.ServerDegree(u)
		}
		return sumC == ne && sumS == ne
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
