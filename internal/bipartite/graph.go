// Package bipartite defines the client–server bipartite graph model used
// throughout the reproduction.
//
// A Graph has n clients and m servers (the paper takes n = m, but the
// representation does not require it). The edge set encodes the admissible
// assignments: client v may send a request only to the servers in its
// neighborhood N(v). The package stores the adjacency in CSR (compressed
// sparse row) form for both sides so that the protocol simulation can walk
// a client's neighborhood and the analysis can walk a server's
// neighborhood without any allocation.
package bipartite

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Graph is an immutable bipartite client–server graph.
//
// Clients are identified by integers in [0, NumClients()); servers by
// integers in [0, NumServers()). The adjacency is stored twice (by client
// and by server) so that both directions can be traversed in O(degree).
type Graph struct {
	numClients int
	numServers int

	// CSR by client: servers adjacent to client v are
	// clientNbr[clientOff[v]:clientOff[v+1]].
	clientOff []int32
	clientNbr []int32

	// CSR by server: clients adjacent to server u are
	// serverNbr[serverOff[u]:serverOff[u+1]].
	serverOff []int32
	serverNbr []int32
}

// Errors returned by the validation helpers.
var (
	ErrEmptyGraph      = errors.New("bipartite: graph has no clients or no servers")
	ErrIsolatedClient  = errors.New("bipartite: a client has no admissible server")
	ErrVertexOutOfSide = errors.New("bipartite: edge endpoint out of range")
)

// Edge is a single client–server admissibility edge.
type Edge struct {
	Client int
	Server int
}

// Builder accumulates edges and produces an immutable Graph.
// It is not safe for concurrent use.
type Builder struct {
	numClients int
	numServers int
	edges      []Edge
}

// NewBuilder returns a Builder for a graph with the given number of
// clients and servers. Both counts must be positive.
func NewBuilder(numClients, numServers int) *Builder {
	return &Builder{numClients: numClients, numServers: numServers}
}

// AddEdge records the admissibility edge (client, server). Duplicate edges
// are allowed at this stage; Build collapses or keeps them according to
// the chosen option.
func (b *Builder) AddEdge(client, server int) *Builder {
	b.edges = append(b.edges, Edge{Client: client, Server: server})
	return b
}

// AddEdges records a batch of edges.
func (b *Builder) AddEdges(edges []Edge) *Builder {
	b.edges = append(b.edges, edges...)
	return b
}

// NumEdgesStaged reports how many edges have been added so far
// (before any deduplication performed by Build).
func (b *Builder) NumEdgesStaged() int { return len(b.edges) }

// BuildOption tunes Builder.Build.
type BuildOption int

const (
	// KeepParallelEdges leaves duplicate (client, server) pairs in place.
	// The protocol treats a duplicated edge as a higher selection weight,
	// which some generators (configuration model) rely on.
	KeepParallelEdges BuildOption = iota
	// DedupEdges collapses duplicate (client, server) pairs to one edge.
	DedupEdges
)

// Build validates endpoints and produces the immutable Graph.
func (b *Builder) Build(opt BuildOption) (*Graph, error) {
	if b.numClients <= 0 || b.numServers <= 0 {
		return nil, ErrEmptyGraph
	}
	for _, e := range b.edges {
		if e.Client < 0 || e.Client >= b.numClients || e.Server < 0 || e.Server >= b.numServers {
			return nil, fmt.Errorf("%w: edge (%d,%d) with %d clients and %d servers",
				ErrVertexOutOfSide, e.Client, e.Server, b.numClients, b.numServers)
		}
	}
	edges := b.edges
	if opt == DedupEdges {
		edges = dedupEdges(edges)
	}
	return fromEdges(b.numClients, b.numServers, edges), nil
}

func dedupEdges(edges []Edge) []Edge {
	sorted := make([]Edge, len(edges))
	copy(sorted, edges)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Client != sorted[j].Client {
			return sorted[i].Client < sorted[j].Client
		}
		return sorted[i].Server < sorted[j].Server
	})
	out := sorted[:0]
	for i, e := range sorted {
		if i == 0 || e != sorted[i-1] {
			out = append(out, e)
		}
	}
	return out
}

// fromEdges builds both CSR directions from a validated edge list.
func fromEdges(numClients, numServers int, edges []Edge) *Graph {
	g := &Graph{
		numClients: numClients,
		numServers: numServers,
		clientOff:  make([]int32, numClients+1),
		serverOff:  make([]int32, numServers+1),
		clientNbr:  make([]int32, len(edges)),
		serverNbr:  make([]int32, len(edges)),
	}
	for _, e := range edges {
		g.clientOff[e.Client+1]++
		g.serverOff[e.Server+1]++
	}
	for i := 0; i < numClients; i++ {
		g.clientOff[i+1] += g.clientOff[i]
	}
	for i := 0; i < numServers; i++ {
		g.serverOff[i+1] += g.serverOff[i]
	}
	cPos := make([]int32, numClients)
	sPos := make([]int32, numServers)
	for _, e := range edges {
		g.clientNbr[g.clientOff[e.Client]+cPos[e.Client]] = int32(e.Server)
		cPos[e.Client]++
		g.serverNbr[g.serverOff[e.Server]+sPos[e.Server]] = int32(e.Client)
		sPos[e.Server]++
	}
	return g
}

// NumClients returns the number of clients (|C|).
func (g *Graph) NumClients() int { return g.numClients }

// NumServers returns the number of servers (|S|).
func (g *Graph) NumServers() int { return g.numServers }

// NumEdges returns the number of admissibility edges (parallel edges
// counted with multiplicity).
func (g *Graph) NumEdges() int { return len(g.clientNbr) }

// ClientDegree returns |N(v)| for client v.
func (g *Graph) ClientDegree(v int) int {
	return int(g.clientOff[v+1] - g.clientOff[v])
}

// ServerDegree returns |N(u)| for server u.
func (g *Graph) ServerDegree(u int) int {
	return int(g.serverOff[u+1] - g.serverOff[u])
}

// ClientNeighbors returns the servers adjacent to client v. The returned
// slice aliases the graph's internal storage and must not be modified.
func (g *Graph) ClientNeighbors(v int) []int32 {
	return g.clientNbr[g.clientOff[v]:g.clientOff[v+1]]
}

// ServerNeighbors returns the clients adjacent to server u. The returned
// slice aliases the graph's internal storage and must not be modified.
func (g *Graph) ServerNeighbors(u int) []int32 {
	return g.serverNbr[g.serverOff[u]:g.serverOff[u+1]]
}

// Edges returns a copy of the edge list in client-major order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for v := 0; v < g.numClients; v++ {
		for _, u := range g.ClientNeighbors(v) {
			out = append(out, Edge{Client: v, Server: int(u)})
		}
	}
	return out
}

// Validate checks the structural requirements the protocols rely on:
// non-empty sides and no isolated clients (a client with an empty
// neighborhood could never place its balls).
func (g *Graph) Validate() error {
	if g.numClients == 0 || g.numServers == 0 {
		return ErrEmptyGraph
	}
	for v := 0; v < g.numClients; v++ {
		if g.ClientDegree(v) == 0 {
			return fmt.Errorf("%w: client %d", ErrIsolatedClient, v)
		}
	}
	return nil
}

// DegreeStats summarizes the degree sequences of both sides together with
// the quantities Theorem 1 is stated in terms of.
type DegreeStats struct {
	MinClientDegree int     // ∆min(C)
	MaxClientDegree int     // ∆max(C)
	MinServerDegree int     // ∆min(S)
	MaxServerDegree int     // ∆max(S)
	MeanClientDeg   float64 // average |N(v)| over clients
	MeanServerDeg   float64 // average |N(u)| over servers
	// RegularityRatio is ρ = ∆max(S)/∆min(C); Theorem 1 requires it to be
	// bounded by a constant. It is +Inf when some client is isolated.
	RegularityRatio float64
	// Eta is the η for which ∆min(C) = η·log₂²(n) with n = |C|; this is the
	// constant that lower-bounds the admissible threshold c through
	// 288/(η·d). Base-2 logarithms are used for all paper quantities in
	// this codebase. It is +Inf for n ≤ 1.
	Eta float64
}

// Stats computes DegreeStats in a single pass.
func (g *Graph) Stats() DegreeStats {
	return DegreeStatsOf(g.numClients, g.numServers, g.ClientDegree, g.ServerDegree)
}

// DegreeStatsOf computes DegreeStats from degree accessors. It is the
// shared implementation behind Graph.Stats and the implicit topologies
// that carry exact degree tables (gen.Implicit.DegreeStats).
func DegreeStatsOf(numClients, numServers int, clientDeg, serverDeg func(int) int) DegreeStats {
	st := DegreeStats{
		MinClientDegree: math.MaxInt,
		MinServerDegree: math.MaxInt,
	}
	totalC := 0
	for v := 0; v < numClients; v++ {
		d := clientDeg(v)
		totalC += d
		if d < st.MinClientDegree {
			st.MinClientDegree = d
		}
		if d > st.MaxClientDegree {
			st.MaxClientDegree = d
		}
	}
	totalS := 0
	for u := 0; u < numServers; u++ {
		d := serverDeg(u)
		totalS += d
		if d < st.MinServerDegree {
			st.MinServerDegree = d
		}
		if d > st.MaxServerDegree {
			st.MaxServerDegree = d
		}
	}
	if numClients > 0 {
		st.MeanClientDeg = float64(totalC) / float64(numClients)
	}
	if numServers > 0 {
		st.MeanServerDeg = float64(totalS) / float64(numServers)
	}
	if st.MinClientDegree == math.MaxInt {
		st.MinClientDegree = 0
	}
	if st.MinServerDegree == math.MaxInt {
		st.MinServerDegree = 0
	}
	if st.MinClientDegree > 0 {
		st.RegularityRatio = float64(st.MaxServerDegree) / float64(st.MinClientDegree)
	} else {
		st.RegularityRatio = math.Inf(1)
	}
	if numClients > 1 {
		logn := math.Log2(float64(numClients))
		st.Eta = float64(st.MinClientDegree) / (logn * logn)
	} else {
		st.Eta = math.Inf(1)
	}
	return st
}

// IsRegular reports whether every client and every server has exactly
// degree delta.
func (g *Graph) IsRegular(delta int) bool {
	for v := 0; v < g.numClients; v++ {
		if g.ClientDegree(v) != delta {
			return false
		}
	}
	for u := 0; u < g.numServers; u++ {
		if g.ServerDegree(u) != delta {
			return false
		}
	}
	return true
}

// IsAlmostRegular reports whether the graph satisfies the hypothesis of
// Theorem 1 with parameters (eta, rho): ∆min(C) ≥ eta·log²n and
// ∆max(S)/∆min(C) ≤ rho.
func (g *Graph) IsAlmostRegular(eta, rho float64) bool {
	st := g.Stats()
	n := float64(g.numClients)
	if n <= 1 {
		return true
	}
	logn := math.Log2(n)
	return float64(st.MinClientDegree) >= eta*logn*logn && st.RegularityRatio <= rho
}

// ClientDegreeHistogram returns a map from degree to the number of clients
// with that degree.
func (g *Graph) ClientDegreeHistogram() map[int]int {
	h := make(map[int]int)
	for v := 0; v < g.numClients; v++ {
		h[g.ClientDegree(v)]++
	}
	return h
}

// ServerDegreeHistogram returns a map from degree to the number of servers
// with that degree.
func (g *Graph) ServerDegreeHistogram() map[int]int {
	h := make(map[int]int)
	for u := 0; u < g.numServers; u++ {
		h[g.ServerDegree(u)]++
	}
	return h
}

// HasEdge reports whether (client, server) is an admissibility edge. It is
// O(degree) and intended for tests and validation, not hot paths.
func (g *Graph) HasEdge(client, server int) bool {
	if client < 0 || client >= g.numClients || server < 0 || server >= g.numServers {
		return false
	}
	for _, u := range g.ClientNeighbors(client) {
		if int(u) == server {
			return true
		}
	}
	return false
}

// CheckConsistency verifies that the two CSR directions describe the same
// edge multiset. It is used by tests and by deserialization.
func (g *Graph) CheckConsistency() error {
	if len(g.clientNbr) != len(g.serverNbr) {
		return fmt.Errorf("bipartite: inconsistent edge counts %d vs %d", len(g.clientNbr), len(g.serverNbr))
	}
	counts := make(map[Edge]int, len(g.clientNbr))
	for v := 0; v < g.numClients; v++ {
		for _, u := range g.ClientNeighbors(v) {
			counts[Edge{Client: v, Server: int(u)}]++
		}
	}
	for u := 0; u < g.numServers; u++ {
		for _, v := range g.ServerNeighbors(u) {
			e := Edge{Client: int(v), Server: u}
			counts[e]--
			if counts[e] == 0 {
				delete(counts, e)
			}
		}
	}
	if len(counts) != 0 {
		return fmt.Errorf("bipartite: CSR directions disagree on %d edges", len(counts))
	}
	return nil
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	st := g.Stats()
	return fmt.Sprintf("bipartite{clients=%d servers=%d edges=%d degC=[%d,%d] degS=[%d,%d] rho=%.2f}",
		g.numClients, g.numServers, g.NumEdges(),
		st.MinClientDegree, st.MaxClientDegree, st.MinServerDegree, st.MaxServerDegree, st.RegularityRatio)
}
