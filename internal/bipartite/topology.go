package bipartite

import "fmt"

// Topology is the read-only client-side view of a bipartite client–server
// graph that the protocol engines require. It abstracts over *how* the
// adjacency is stored: the materialized CSR Graph implements it by
// returning slices of its edge arrays, while implicit topologies (see
// internal/gen: regular, Erdős–Rényi, trust-subset and almost-regular
// all have regenerative samplers) recompute a client's neighborhood on
// demand from a per-client random seed, storing O(n) state instead of
// O(n·Δ) edges — the representation that makes million-client
// simulations fit in memory. The sweep engine (internal/sweep) selects
// between the representations per experiment point; a run's Result is
// bit-for-bit independent of the choice.
//
// Implementations must be safe for concurrent use by multiple readers:
// the simulation engines call AppendClientNeighbors from several worker
// goroutines at once (with distinct buffers).
type Topology interface {
	// NumClients returns the number of clients (|C|).
	NumClients() int
	// NumServers returns the number of servers (|S|).
	NumServers() int
	// ClientDegree returns |N(v)| for client v (parallel edges counted
	// with multiplicity). Implicit implementations may take O(Δ) to
	// answer; hot paths should use AppendClientNeighbors and len().
	ClientDegree(v int) int
	// MaxClientDegree returns max_v |N(v)|. It is used to size
	// neighborhood scratch buffers once per run, so an O(n) computation
	// is acceptable.
	MaxClientDegree() int
	// AppendClientNeighbors appends the servers adjacent to client v to
	// buf and returns the extended slice. Implementations backed by
	// materialized storage may instead return an internal aliasing slice
	// when buf is empty; in every case the caller must treat the result
	// as read-only and valid only until the next call that reuses buf.
	// Callers that feed a returned slice back as a later call's scratch
	// buffer (the engines' per-worker row buffers do) must only do so
	// against implementations that append — an aliasing return would let
	// that later append write through into the topology's own storage.
	// The engines special-case *Graph (the one aliasing implementation)
	// onto a separate zero-copy path for exactly this reason.
	// The neighbor order is a fixed property of the topology: repeated
	// calls for the same v yield the same sequence.
	AppendClientNeighbors(v int, buf []int32) []int32
	// Validate checks the structural requirements the protocols rely on
	// (non-empty sides, no isolated clients). Implicit implementations
	// may answer from construction-time guarantees in O(1).
	Validate() error
}

// PointQueryable is implemented by topologies that can answer single
// neighbor lookups without materializing the whole row. The contract:
// whenever CanPointQuery reports true, NeighborAt(v, i) equals
// AppendClientNeighbors(v, nil)[i] for every client v and every
// 0 <= i < ClientDegree(v), and ClientDegree answers in O(1). The
// protocol engines use this to draw a client's d = O(1) ball
// destinations in O(d) point lookups instead of regenerating the full
// Θ(Δ) row — in the paper's Δ = log²n regime that removes ~99% of the
// dense client phase's per-visit work (see internal/core).
//
// CanPointQuery may change over the lifetime of a mutable topology:
// internal/churn's Topology answers point queries through its rewire
// marks but reports false while server failures are active (a failure
// filters rows at read time, so entry i is no longer a single
// regenerable image). Engines therefore re-derive queryability whenever
// the TopologyVersion moves, exactly like the row caches do.
//
// Implementations must be safe for concurrent readers, like the rest of
// Topology.
type PointQueryable interface {
	Topology
	// CanPointQuery reports whether NeighborAt currently honors the
	// contract above. Implementations whose queryability never changes
	// return a constant.
	CanPointQuery() bool
	// NeighborAt returns the i-th entry of client v's neighbor row,
	// equal to AppendClientNeighbors(v, nil)[i]. Behavior is undefined
	// when CanPointQuery is false or i is out of range.
	NeighborAt(v, i int) int32
}

// PointQuerier returns t as a PointQueryable when t implements the
// interface and currently answers point queries, and nil otherwise. It
// is the single entry point the engines use, so the "implements but
// temporarily non-queryable" state (churn under failures) and the
// "never implements" state (Erdős–Rényi skip-sampling) collapse into
// the same row-regeneration fallback.
func PointQuerier(t Topology) PointQueryable {
	pq, ok := t.(PointQueryable)
	if !ok || !pq.CanPointQuery() {
		return nil
	}
	return pq
}

// Versioned is implemented by mutable topologies whose adjacency can be
// patched in place between protocol runs (see internal/churn). The
// version is a monotone counter bumped on every mutation batch; caches
// that hold regenerated rows (bipartite.RowCache, the route lanes of
// engine.Router) key their validity on it, and core.Runner.PatchTopology
// re-binds a Runner to the mutated graph by comparing versions.
type Versioned interface {
	Topology
	// TopologyVersion returns the current mutation counter. Two calls
	// return the same value iff no mutation happened in between.
	TopologyVersion() uint64
}

// DegreeStatser is implemented by topologies that can report exact
// degree statistics without materializing their edges — either because
// the family's degrees are fixed by construction (implicit regular) or
// because the constructor recorded a per-server degree table (implicit
// almost-regular). It is what lets experiments whose threshold constant
// depends on measured server degrees (E8's Lemma-19 c) run on implicit
// topologies.
type DegreeStatser interface {
	// DegreeStats returns the exact statistics and true, or ok=false when
	// the implementation cannot answer without materialization.
	DegreeStats() (DegreeStats, bool)
}

// TopologyStats returns exact degree statistics for t when available:
// materialized graphs measure them directly, implicit topologies answer
// through DegreeStatser.
func TopologyStats(t Topology) (DegreeStats, bool) {
	switch g := t.(type) {
	case *Graph:
		return g.Stats(), true
	case DegreeStatser:
		return g.DegreeStats()
	}
	return DegreeStats{}, false
}

// Graph implements Topology.
var _ Topology = (*Graph)(nil)

// MaxClientDegree returns the largest client degree; it scans the offset
// array once.
func (g *Graph) MaxClientDegree() int {
	maxDeg := 0
	for v := 0; v < g.numClients; v++ {
		if d := g.ClientDegree(v); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// AppendClientNeighbors appends client v's neighbors to buf. When buf is
// empty the internal CSR slice is returned directly (zero copy), matching
// the aliasing contract of ClientNeighbors.
func (g *Graph) AppendClientNeighbors(v int, buf []int32) []int32 {
	nbrs := g.ClientNeighbors(v)
	if len(buf) == 0 {
		return nbrs
	}
	return append(buf, nbrs...)
}

// CanPointQuery reports true: a CSR row answers point queries by array
// read.
func (g *Graph) CanPointQuery() bool { return true }

// NeighborAt returns the i-th neighbor of client v in O(1).
func (g *Graph) NeighborAt(v, i int) int32 {
	return g.clientNbr[int(g.clientOff[v])+i]
}

var _ PointQueryable = (*Graph)(nil)

// Materialize builds the CSR Graph holding exactly the edges t describes,
// with every client row in t's neighbor order. If t already is a *Graph it
// is returned unchanged. The construction allocates the final CSR arrays
// directly (two passes over the rows) rather than staging an edge list, so
// peak memory is the graph's own 8 bytes/edge.
func Materialize(t Topology) (*Graph, error) {
	if g, ok := t.(*Graph); ok {
		return g, nil
	}
	n := t.NumClients()
	m := t.NumServers()
	if n <= 0 || m <= 0 {
		return nil, ErrEmptyGraph
	}
	g := &Graph{
		numClients: n,
		numServers: m,
		clientOff:  make([]int32, n+1),
		serverOff:  make([]int32, m+1),
	}
	scratch := make([]int32, 0, t.MaxClientDegree())
	for v := 0; v < n; v++ {
		scratch = t.AppendClientNeighbors(v, scratch[:0])
		g.clientOff[v+1] = g.clientOff[v] + int32(len(scratch))
	}
	edges := int(g.clientOff[n])
	g.clientNbr = make([]int32, edges)
	g.serverNbr = make([]int32, edges)
	for v := 0; v < n; v++ {
		scratch = t.AppendClientNeighbors(v, scratch[:0])
		row := g.clientNbr[g.clientOff[v]:g.clientOff[v+1]]
		if len(scratch) != len(row) {
			return nil, fmt.Errorf("bipartite: topology row %d changed length between passes (%d vs %d)",
				v, len(row), len(scratch))
		}
		copy(row, scratch)
		for _, u := range scratch {
			if u < 0 || int(u) >= m {
				return nil, fmt.Errorf("%w: client %d lists server %d of %d", ErrVertexOutOfSide, v, u, m)
			}
			g.serverOff[u+1]++
		}
	}
	for u := 0; u < m; u++ {
		g.serverOff[u+1] += g.serverOff[u]
	}
	pos := make([]int32, m)
	for v := 0; v < n; v++ {
		for _, u := range g.clientNbr[g.clientOff[v]:g.clientOff[v+1]] {
			g.serverNbr[g.serverOff[u]+pos[u]] = int32(v)
			pos[u]++
		}
	}
	return g, nil
}
