package bipartite

import (
	"reflect"
	"testing"
)

// cacheTestGraph builds a small materialized graph to play the implicit
// topology's role (any Topology works; the cache never inspects the
// representation).
func cacheTestGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(5, 6)
	b.AddEdge(0, 0).AddEdge(0, 3)
	b.AddEdge(1, 1)
	b.AddEdge(2, 2).AddEdge(2, 4).AddEdge(2, 5)
	b.AddEdge(3, 3)
	b.AddEdge(4, 5)
	g, err := b.Build(KeepParallelEdges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRowCacheRoundTrip(t *testing.T) {
	g := cacheTestGraph(t)
	c := NewRowCache(g.NumClients())
	if _, ok := c.CachedRow(0); ok {
		t.Fatal("fresh cache reports a cached row")
	}
	c.Cache(g, []int32{0, 2, 4})
	for _, v := range []int{0, 2, 4} {
		row, ok := c.CachedRow(v)
		if !ok {
			t.Fatalf("client %d missing from cache", v)
		}
		want := g.ClientNeighbors(v)
		if !reflect.DeepEqual(append([]int32(nil), row...), append([]int32(nil), want...)) {
			t.Fatalf("client %d cached row %v, want %v", v, row, want)
		}
	}
	for _, v := range []int{1, 3} {
		if _, ok := c.CachedRow(v); ok {
			t.Fatalf("client %d unexpectedly cached", v)
		}
	}
	if got, want := c.CachedEdges(), 2+3+1; got != want {
		t.Fatalf("CachedEdges = %d, want %d", got, want)
	}
}

func TestRowCacheInvalidateAndRecache(t *testing.T) {
	g := cacheTestGraph(t)
	c := NewRowCache(g.NumClients())
	c.Cache(g, []int32{0, 1, 2, 3, 4})
	c.Invalidate()
	if c.CachedEdges() != 0 {
		t.Fatalf("CachedEdges = %d after Invalidate", c.CachedEdges())
	}
	for v := 0; v < g.NumClients(); v++ {
		if _, ok := c.CachedRow(v); ok {
			t.Fatalf("client %d cached after Invalidate", v)
		}
	}
	// Re-caching a different subset must not resurrect old entries.
	c.Cache(g, []int32{3})
	if _, ok := c.CachedRow(0); ok {
		t.Fatal("client 0 cached after re-cache of {3}")
	}
	row, ok := c.CachedRow(3)
	if !ok || len(row) != 1 || row[0] != 3 {
		t.Fatalf("client 3 row = %v (%v), want [3]", row, ok)
	}
	// Cache replaces wholesale even without an explicit Invalidate.
	c.Cache(g, []int32{4})
	if _, ok := c.CachedRow(3); ok {
		t.Fatal("client 3 survived a replacing Cache call")
	}
	if _, ok := c.CachedRow(4); !ok {
		t.Fatal("client 4 missing after replacing Cache call")
	}
}

func TestRowCacheEmptyClientList(t *testing.T) {
	g := cacheTestGraph(t)
	c := NewRowCache(g.NumClients())
	c.Cache(g, nil)
	if c.CachedEdges() != 0 {
		t.Fatalf("CachedEdges = %d for empty client list", c.CachedEdges())
	}
}
