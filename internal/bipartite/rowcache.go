package bipartite

import "repro/internal/telemetry"

// RowCacheMetrics are the optional telemetry counters of a RowCache:
// hits and misses count CachedRow outcomes, evictions counts rows
// dropped by Invalidate (including the implicit Invalidate at the start
// of every Cache). All fields may be nil — the counters are
// nil-receiver-safe — so a zero value attached to a cache only counts
// what the caller wired up.
type RowCacheMetrics struct {
	Hits, Misses, Evictions *telemetry.Counter
}

// RowCache memoizes regenerated neighborhood rows of an implicit
// Topology for a fixed set of clients. It exists for the late rounds of
// a protocol run on a regenerative topology: once the active frontier
// has decayed to a small surviving set, every remaining round resamples
// the same few clients' rows, and caching them turns O(Δ) Feistel /
// skip-sampling work per client per round into a slice read. The cache
// is deliberately dumb — built once for an explicit client list, read
// concurrently, invalidated wholesale — because the frontier only ever
// shrinks: a snapshot taken at caching time covers every later round's
// survivors.
//
// Memory stays bounded by construction: the caller decides when the
// frontier is small enough to cache (core.Runner budgets cached edges at
// max(numClients, 2¹⁶), a few percent of what the materialized CSR twin
// would hold; internal/core's TestShardedRowCacheMemoryGuard pins the
// bound). Rows are stored
// in one contiguous buffer with per-client offsets, plus an O(n) int32
// index that is reused across Invalidate/Cache cycles.
type RowCache struct {
	// idx[v] is the position of client v's row in off, or -1.
	idx []int32
	// off[i]..off[i+1] delimit the i-th cached row inside buf.
	off []int32
	buf []int32
	// cached lists the clients with entries, so Invalidate is O(cached).
	cached []int32
	// version is the topology version the cached rows were regenerated
	// from (see bipartite.Versioned). Static topologies leave it zero.
	version uint64
	// met, when non-nil, receives hit/miss/eviction counts (SetMetrics).
	met *RowCacheMetrics
}

// SetMetrics attaches telemetry counters to the cache. Call it before
// concurrent CachedRow readers start; a nil argument detaches.
func (c *RowCache) SetMetrics(m *RowCacheMetrics) { c.met = m }

// NewRowCache returns an empty cache for a topology with numClients
// clients.
func NewRowCache(numClients int) *RowCache {
	idx := make([]int32, numClients)
	for v := range idx {
		idx[v] = -1
	}
	return &RowCache{idx: idx}
}

// Cache regenerates and stores the rows of the given clients from t,
// replacing any previous contents. The client list is typically the
// current active frontier; each listed client must be < numClients.
// Cache must not run concurrently with CachedRow.
func (c *RowCache) Cache(t Topology, clients []int32) {
	c.Invalidate()
	c.off = append(c.off, 0)
	for _, v := range clients {
		// AppendClientNeighbors may return an aliasing view of internal
		// storage when handed an empty buffer (the CSR zero-copy path), so
		// the row goes through a fresh slice and is copied into buf rather
		// than appended in place.
		row := t.AppendClientNeighbors(int(v), nil)
		c.buf = append(c.buf, row...)
		c.idx[v] = int32(len(c.off) - 1)
		c.off = append(c.off, int32(len(c.buf)))
		c.cached = append(c.cached, v)
	}
}

// CachedRow returns client v's cached row and whether it is present. The
// returned slice aliases the cache and is read-only; it is safe to read
// from multiple goroutines between Cache/Invalidate calls.
func (c *RowCache) CachedRow(v int) ([]int32, bool) {
	i := c.idx[v]
	if i < 0 {
		if c.met != nil {
			c.met.Misses.Inc(v)
		}
		return nil, false
	}
	if c.met != nil {
		c.met.Hits.Inc(v)
	}
	return c.buf[c.off[i]:c.off[i+1]], true
}

// CachedEdges returns the number of row entries currently held.
func (c *RowCache) CachedEdges() int { return len(c.buf) }

// SetVersion stamps the cache with the topology version its rows were
// regenerated from. Callers caching rows of a Versioned topology stamp
// the cache right after Cache and use ValidFor to detect staleness
// instead of re-deriving it from their own bookkeeping.
func (c *RowCache) SetVersion(v uint64) { c.version = v }

// ValidFor reports whether the cached rows were regenerated from
// topology version v.
func (c *RowCache) ValidFor(v uint64) bool { return c.version == v }

// Invalidate drops every cached row, keeping the allocations for reuse.
func (c *RowCache) Invalidate() {
	if c.met != nil && len(c.cached) > 0 {
		c.met.Evictions.Add(0, int64(len(c.cached)))
	}
	for _, v := range c.cached {
		c.idx[v] = -1
	}
	c.cached = c.cached[:0]
	c.off = c.off[:0]
	c.buf = c.buf[:0]
}
