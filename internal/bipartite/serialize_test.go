package bipartite

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func sampleGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := NewBuilder(4, 3).
		AddEdge(0, 0).AddEdge(0, 2).
		AddEdge(1, 1).
		AddEdge(2, 0).AddEdge(2, 1).AddEdge(2, 2).
		AddEdge(3, 2).
		Build(KeepParallelEdges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func graphsEqual(a, b *Graph) bool {
	if a.NumClients() != b.NumClients() || a.NumServers() != b.NumServers() || a.NumEdges() != b.NumEdges() {
		return false
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			return false
		}
	}
	return true
}

func TestJSONRoundTrip(t *testing.T) {
	g := sampleGraph(t)
	data, err := g.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, back) {
		t.Fatal("JSON round trip changed the graph")
	}
}

func TestFromJSONRejectsGarbage(t *testing.T) {
	if _, err := FromJSON([]byte("{not json")); err == nil {
		t.Fatal("expected error for malformed JSON")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := sampleGraph(t)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, back) {
		t.Fatal("edge-list round trip changed the graph")
	}
}

func TestReadEdgeListSkipsCommentsAndBlanks(t *testing.T) {
	input := "2 2 2\n# a comment\n0 0\n\n1 1\n"
	g, err := ReadEdgeList(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 || !g.HasEdge(0, 0) || !g.HasEdge(1, 1) {
		t.Fatalf("unexpected parse result: %v", g)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"bad header", "2 2\n"},
		{"bad client count", "x 2 1\n0 0\n"},
		{"bad server count", "2 x 1\n0 0\n"},
		{"bad edge count", "2 2 x\n0 0\n"},
		{"bad edge line", "2 2 1\n0\n"},
		{"bad client id", "2 2 1\nx 0\n"},
		{"bad server id", "2 2 1\n0 x\n"},
		{"edge count mismatch", "2 2 3\n0 0\n"},
		{"endpoint out of range", "2 2 1\n0 5\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadEdgeList(strings.NewReader(tc.input)); err == nil {
				t.Fatalf("expected error for %q", tc.input)
			}
		})
	}
}

func TestQuickSerializationRoundTrip(t *testing.T) {
	f := func(seed uint64, ncRaw, nsRaw, neRaw uint8) bool {
		nc := int(ncRaw%10) + 1
		ns := int(nsRaw%10) + 1
		ne := int(neRaw % 60)
		r := rng.New(seed)
		b := NewBuilder(nc, ns)
		for i := 0; i < ne; i++ {
			b.AddEdge(r.Intn(nc), r.Intn(ns))
		}
		g, err := b.Build(KeepParallelEdges)
		if err != nil {
			return false
		}

		data, err := g.MarshalJSON()
		if err != nil {
			return false
		}
		fromJSON, err := FromJSON(data)
		if err != nil || !graphsEqual(g, fromJSON) {
			return false
		}

		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			return false
		}
		fromText, err := ReadEdgeList(&buf)
		return err == nil && graphsEqual(g, fromText)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
