package bipartite

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// graphJSON is the wire form used by MarshalJSON/UnmarshalJSON.
// Edges are stored as [client, server] pairs in client-major order.
type graphJSON struct {
	NumClients int      `json:"num_clients"`
	NumServers int      `json:"num_servers"`
	Edges      [][2]int `json:"edges"`
}

// MarshalJSON encodes the graph as a compact JSON document.
func (g *Graph) MarshalJSON() ([]byte, error) {
	doc := graphJSON{
		NumClients: g.numClients,
		NumServers: g.numServers,
		Edges:      make([][2]int, 0, g.NumEdges()),
	}
	for _, e := range g.Edges() {
		doc.Edges = append(doc.Edges, [2]int{e.Client, e.Server})
	}
	return json.Marshal(doc)
}

// FromJSON decodes a graph previously encoded with MarshalJSON.
func FromJSON(data []byte) (*Graph, error) {
	var doc graphJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("bipartite: decoding graph JSON: %w", err)
	}
	b := NewBuilder(doc.NumClients, doc.NumServers)
	for _, e := range doc.Edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build(KeepParallelEdges)
}

// WriteEdgeList writes the graph in a simple text format:
//
//	# header line: <numClients> <numServers> <numEdges>
//	<client> <server>
//	...
//
// The format is intended for interoperability with external plotting or
// graph tools.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", g.numClients, g.numServers, g.NumEdges()); err != nil {
		return err
	}
	for v := 0; v < g.numClients; v++ {
		for _, u := range g.ClientNeighbors(v) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", v, u); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format produced by WriteEdgeList.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("bipartite: reading edge-list header: %w", err)
		}
		return nil, fmt.Errorf("bipartite: empty edge-list input")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 3 {
		return nil, fmt.Errorf("bipartite: malformed header %q", sc.Text())
	}
	nc, err := strconv.Atoi(header[0])
	if err != nil {
		return nil, fmt.Errorf("bipartite: malformed client count %q", header[0])
	}
	ns, err := strconv.Atoi(header[1])
	if err != nil {
		return nil, fmt.Errorf("bipartite: malformed server count %q", header[1])
	}
	ne, err := strconv.Atoi(header[2])
	if err != nil {
		return nil, fmt.Errorf("bipartite: malformed edge count %q", header[2])
	}
	b := NewBuilder(nc, ns)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("bipartite: malformed edge line %q", line)
		}
		c, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("bipartite: malformed client id %q", fields[0])
		}
		s, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("bipartite: malformed server id %q", fields[1])
		}
		b.AddEdge(c, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bipartite: reading edge list: %w", err)
	}
	if b.NumEdgesStaged() != ne {
		return nil, fmt.Errorf("bipartite: header declares %d edges but %d were read", ne, b.NumEdgesStaged())
	}
	return b.Build(KeepParallelEdges)
}
